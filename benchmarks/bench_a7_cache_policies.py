"""A7 -- cache substrate: replacement policies, readahead, coalescing.

The paper charges one unit per block transfer; which transfers a cache
*avoids* is pure replacement policy.  This experiment drives identical
workloads through the pluggable :class:`~repro.io.BufferPool` policies
and gates their exact physical read counts:

- **Mixed scan+point workload** (the 2Q headline): rounds of hot-strip
  point queries against a PST interleaved with full-structure scans and
  inserts.  LRU lets every scan flush the hot upper-level blocks; 2Q
  routes the scan through its probationary FIFO and keeps the hot set
  in the protected queue, so its hit rate must stay >= 1.3x LRU's
  (gated as ``hitrate_2q_over_lru_deficit``).
- **CONT-chain readahead**: repeated ``BlockedSequence`` scans with and
  without a readahead window.  Physical reads are identical (the sim
  charges per block either way); what changes is that one *logical*
  miss batch-fetches the chain, so misses collapse and later reads are
  prefetch hits.
- **Write coalescing**: an insert-heavy PST run with group flush on,
  reporting how many dirty write-backs rode along with an eviction's
  batch leader.

Per-policy physical reads and logical miss counts are deterministic
(pure simulation, no threads) and gated; wall-clock goes to ``perf``
and the per-pool cache behaviour to the ``cache`` section.
"""

import time

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.io import BlockStore, BufferPool
from repro.substrates.blocked_list import BlockedSequence
from repro.workloads import uniform_points

from conftest import record_result

B = 32
N = 4000
CAPACITY = 64
ROUNDS = 6
HOT_QUERIES = 20
POLICIES = ("lru", "2q", "clock")

SEQ_RECORDS = 384        # -> 24 half-full data blocks at B = 32
SEQ_SCANS = 5
READAHEAD_WINDOW = 4


def _mixed_workload(pool, pts):
    """Hot-strip point queries + full scans + inserts, ``ROUNDS`` times."""
    pst = ExternalPrioritySearchTree(pool, pts)
    xs = sorted(p[0] for p in pts)
    ys = sorted(p[1] for p in pts)
    y_hot = ys[int(len(ys) * 0.98)]
    y_all = ys[0] - 1.0
    # fixed narrow strips: the same root-to-leaf paths every round
    strips = [
        (xs[int(len(xs) * f)], xs[min(len(xs) - 1, int(len(xs) * f) + 40)])
        for f in (0.10, 0.30, 0.50, 0.70, 0.90)
    ]
    pool.drop()  # cold cache; build traffic must not pollute the measure
    h0, m0 = pool.hits, pool.misses
    before = pool.physical_store.stats.copy()
    t0 = time.perf_counter()
    new_x = 0.0
    for r in range(ROUNDS):
        for i in range(HOT_QUERIES):
            a, b = strips[i % len(strips)]
            pst.query(a, b, y_hot)
        pst.query(xs[0], xs[-1], y_all)          # the scan flood
        for _ in range(5):                        # sprinkle of updates
            new_x += 7.03
            pst.insert(new_x % 1000.0, 1000.0 + r + new_x % 1.0)
    wall = time.perf_counter() - t0
    pool.flush()
    delta = pool.physical_store.stats - before
    hits, misses = pool.hits - h0, pool.misses - m0
    rate = hits / (hits + misses) if hits + misses else 0.0
    return delta.reads, rate, wall


def _run_policies():
    pts = uniform_points(N, seed=141)
    rows, gate, perf, cache = [], {}, {}, {}
    rates = {}
    for policy in POLICIES:
        disk = BlockStore(B)
        pool = BufferPool(disk, CAPACITY, policy=policy)
        reads, rate, wall = _mixed_workload(pool, pts)
        rates[policy] = rate
        rows.append([policy, CAPACITY, reads, f"{rate:.1%}", f"{wall:.2f}"])
        gate[f"reads_{policy}"] = reads
        perf[f"wall_s_{policy}"] = round(wall, 3)
        cache[policy] = {
            "policy": policy,
            "hits": pool.hits,
            "misses": pool.misses,
            "hit_rate": round(pool.hit_rate, 4),
            "evictions": pool.evictions,
        }
    ratio = rates["2q"] / rates["lru"] if rates["lru"] else float("inf")
    gate["hitrate_2q_over_lru_deficit"] = round(max(0.0, 1.3 - ratio), 4)
    return rows, gate, perf, cache, ratio


def _run_readahead():
    """Same scans, readahead off vs on: reads equal, misses collapse."""
    records = sorted(
        ((float(i % 97), float(i)) for i in range(SEQ_RECORDS)),
        key=lambda r: r[1], reverse=True,
    )
    out = {}
    results = {}
    for window in (0, READAHEAD_WINDOW):
        disk = BlockStore(B)
        pool = BufferPool(
            disk, CAPACITY, policy="2q", readahead_window=window
        )
        seq = BlockedSequence.from_sorted(pool, records, key=lambda r: r[1])
        scanned = None
        reads0 = disk.stats.reads
        h0, m0 = pool.hits, pool.misses
        for _ in range(SEQ_SCANS):
            pool.drop()   # every scan runs cold: pure readahead effect
            scanned = seq.scan_all()
        results[window] = scanned
        out[window] = {
            "reads": disk.stats.reads - reads0,
            "misses": pool.misses - m0,
            "hits": pool.hits - h0,
            "prefetch_issued": pool.prefetch_issued,
            "prefetch_hits": pool.prefetch_hits,
            "prefetch_waste": pool.prefetch_waste,
        }
    # readahead may change which fetch is demand vs prefetch, never what
    # the caller sees
    assert results[0] == results[READAHEAD_WINDOW]
    return out


def _run_coalescing():
    """Insert-heavy run with group flush: eviction drains the dirty set."""
    pts = uniform_points(1500, seed=142)
    out = {}
    for coalesce in (False, True):
        disk = BlockStore(B)
        pool = BufferPool(
            disk, 16, policy="lru", coalesce_writes=coalesce
        )
        pst = ExternalPrioritySearchTree(pool, pts[:1000])
        w0 = disk.stats.writes
        for x, y in pts[1000:]:
            pst.insert(x, y)
        pool.flush()
        out[coalesce] = {
            "writes": disk.stats.writes - w0,
            "coalesced": pool.coalesced_writes,
        }
    return out


def _run():
    rows, gate, perf, cache, ratio = _run_policies()
    ra = _run_readahead()
    co = _run_coalescing()
    return rows, gate, perf, cache, ratio, ra, co


def test_a7_cache_policies(benchmark):
    rows, gate, perf, cache, ratio, ra, co = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    w = READAHEAD_WINDOW
    rows = list(rows)
    rows.append([
        f"readahead w={w}", CAPACITY, ra[w]["reads"],
        f"misses {ra[0]['misses']} -> {ra[w]['misses']}",
        f"prefetch hits {ra[w]['prefetch_hits']}",
    ])
    rows.append([
        "coalesce on", 16, co[True]["writes"],
        f"coalesced {co[True]['coalesced']}",
        f"plain writes {co[False]['writes']}",
    ])
    # readahead moves fetches, it must not add or remove any
    gate["readahead_extra_reads"] = ra[w]["reads"] - ra[0]["reads"]
    gate["readahead_misses"] = ra[w]["misses"]
    cache[f"2q+readahead{w}"] = {
        "policy": "2q",
        "hits": ra[w]["hits"],
        "misses": ra[w]["misses"],
        "prefetch_issued": ra[w]["prefetch_issued"],
        "prefetch_hits": ra[w]["prefetch_hits"],
        "prefetch_waste": ra[w]["prefetch_waste"],
    }
    cache["lru+coalesce"] = {
        "policy": "lru",
        "coalesced_writes": co[True]["coalesced"],
    }

    record_result(
        "A7",
        title=(
            f"[A7] Cache policy lattice on a mixed scan+point PST "
            f"workload (N = {N}, B = {B}, capacity = {CAPACITY})"
        ),
        headers=["config", "capacity", "physical reads", "hit rate / detail",
                 "wall s / detail"],
        rows=rows,
        gate=gate,
        perf=perf,
        cache=cache,
        notes=(
            "Physical read counts and logical miss counts are "
            "deterministic and gated; the 2Q-vs-LRU hit-rate ratio is "
            "gated as max(0, 1.3 - ratio). Wall-clock and per-pool "
            "cache behaviour are exported non-gated."
        ),
    )
    assert gate["hitrate_2q_over_lru_deficit"] == 0.0, (
        f"2Q hit rate only {ratio:.2f}x LRU (need >= 1.3x): {rows}"
    )
    # the scan-resistant policy must also do no more physical I/O
    assert gate["reads_2q"] <= gate["reads_lru"]
    assert gate["readahead_extra_reads"] == 0
    assert ra[READAHEAD_WINDOW]["misses"] < ra[0]["misses"]
    assert ra[READAHEAD_WINDOW]["prefetch_hits"] > 0
    assert co[True]["coalesced"] > 0
