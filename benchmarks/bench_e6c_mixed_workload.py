"""E6c -- sustained mixed workloads: the regime real systems live in.

The paper's bounds are per-operation; this experiment replays identical
insert/delete/query traces (three mixes) over a pre-built base through
the Theorem 6 PST, the log-method dynamization, and the B-tree baseline,
reporting mean I/O per operation kind.

Expected shape: the B-tree wins updates and loses wide-slab queries
outright (it scans the slab); the PST holds every bound with zero
resident state; the log-method looks unbeatable on this table *because*
its per-level directories live in RAM (O(n) entries -- the A4 trade
made dynamic), which is exactly the practical configuration the paper's
Section 5 recommends.
"""

from repro.baselines import BTreeXFilter
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.log_method import LogMethodThreeSidedIndex
from repro.io import BlockStore
from repro.workloads import uniform_points
from repro.workloads.traces import generate_trace, replay

from conftest import record_result

B = 32
N_OPS = 1500
N_BASE = 6000


def _structures(base):
    out = {}
    s = BlockStore(B)
    pst = ExternalPrioritySearchTree(s, base)
    out["PST (Thm 6)"] = (s, dict(
        insert=lambda p: pst.insert(*p),
        delete=lambda p: pst.delete(*p),
        query3=pst.query,
    ))
    s2 = BlockStore(B)
    lm = LogMethodThreeSidedIndex(s2, base)
    out["log-method"] = (s2, dict(
        insert=lambda p: lm.insert(*p),
        delete=lambda p: lm.delete(*p),
        query3=lm.query,
    ))
    s3 = BlockStore(B)
    bt = BTreeXFilter(s3, base)
    out["B-tree+filter"] = (s3, dict(
        insert=lambda p: bt.insert(*p),
        delete=lambda p: bt.delete(*p),
        query3=bt.query_3sided,
    ))
    return out


def _run():
    base = uniform_points(N_BASE, seed=189)
    rows = []
    gate = {}
    for mix_name, mix in [
        ("insert-heavy", (0.70, 0.10, 0.20)),
        ("balanced", (0.40, 0.30, 0.30)),
        ("query-heavy", (0.20, 0.10, 0.70)),
    ]:
        trace = generate_trace(
            N_OPS, mix=mix, seed=190, extent=1_000_000.0,
            query_span=0.7, query_y_floor=0.95, initial=base,
        )
        reference = None
        for name, (store, adapters) in _structures(base).items():
            res = replay(trace, store, verify_against=reference, **adapters)
            if reference is None:
                reference = res
            rows.append([
                mix_name, name,
                f"{res.mean_io('ins'):.1f}",
                f"{res.mean_io('del'):.1f}",
                f"{res.mean_io('q3'):.1f}",
                res.total_ios,
            ])
            slug = name.split(" ")[0].strip("()+").lower().replace("-", "_")
            gate[f"total_io_{mix_name}_{slug}"] = res.total_ios
    return rows, gate


def test_e6c_mixed_workloads(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E6c",
        title=f"[E6c] Sustained mixed workloads over a {N_BASE}-point base "
              f"({N_OPS} ops each, B = {B}; wide-slab low-output queries; "
              f"result sizes cross-checked)",
        headers=["mix", "structure", "ins I/O", "del I/O", "query I/O",
                 "total"],
        rows=rows,
        gate=gate,
    )
    by = {(r[0], r[1]): r for r in rows}
    for mix in ("insert-heavy", "balanced", "query-heavy"):
        # log-method inserts beat PST inserts in every mix ...
        assert float(by[(mix, "log-method")][2]) < float(by[(mix, "PST (Thm 6)")][2])
        # ... and the optimal structures beat the B-tree on queries
        assert float(by[(mix, "PST (Thm 6)")][4]) < float(by[(mix, "B-tree+filter")][4])
