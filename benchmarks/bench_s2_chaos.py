"""S2 -- chaos serving: replicated engine under seeded fault injection.

The self-healing tier's claim is *observational equivalence under
duress*: a replication_factor=2 engine with live fault injection
(transient and permanent read/write errors plus silent block
corruption), a mid-run primary kill and periodic scrubbing must return
byte-identical answers to the fault-free run and lose no acknowledged
write -- every fault is healed in place, rolled back, or failed over.

Everything here is deterministic: replicas draw from per-stream seeded
:class:`~repro.resilience.faults.FaultSchedule` forks, breakers and
retry bounds are count-driven, and scrub cycles run at fixed op
indices, so the chaos run's exact I/O counts (and every repair
counter) are reproducible and gated like any other experiment.

Gated counters:

- ``wrong_answers`` / ``lost_acked_writes`` / ``write_rejections`` --
  the zero-tolerance correctness core,
- ``scrub_unrepaired`` -- the scrubber must repair 100% of the rot it
  finds (a healthy peer copy always exists at factor 2),
- ``determinism_mismatch`` -- a second identical chaos run must match
  the first byte for byte,
- ``overhead_excess`` -- all-replica physical I/O of the chaos run may
  cost at most ``OVERHEAD_BOUND``x the fault-free replicated run
  (repairs, rollbacks and rebuilds are honest I/O, but bounded),
- exact all-replica I/O of the chaos run, pinning the cost model.

Wall-clock throughput rides in ``perf`` (never gated).
"""

from repro.serve import ServingEngine
from repro.workloads import uniform_points
from repro.workloads.traces import generate_trace

from conftest import record_result

B = 16
N_BASE = 1500
N_OPS = 400
BATCH = 20
EXTENT = 1_000_000.0
N_SHARDS = 2
FACTOR = 2
FAULT_SEED = 902
KILL_AT_BATCH = 8          # kill shard 0's primary here, heal 2 batches later
SCRUB_EVERY = 4            # batches between scrub cycles
ROT_AT_BATCH = 15          # scribble at-rest rot right before this scrub
ROT_BLOCKS = 6             # blocks rotted on shard 1's secondary replica
OVERHEAD_BOUND = 4.0       # chaos I/O <= 4x the fault-free replicated run
CHAOS_RATES = {
    "corrupt_rate": 0.02,
    "read_error_rate": 0.02,
    "write_error_rate": 0.02,
    "transient_fraction": 0.5,
}


def _engine(base, factor, chaos):
    kwargs = {}
    if chaos:
        kwargs = dict(fault_seed=FAULT_SEED, fault_rates=dict(CHAOS_RATES))
    return ServingEngine(
        base, n_shards=N_SHARDS, block_size=B, backend="log",
        replication_factor=factor, max_workers=N_SHARDS, **kwargs,
    )


def _inject_rot(eng):
    """Scribble at-rest rot under the whole chain of shard 1's secondary.

    This models media decay between writes: the bytes flip on disk with
    no fault-schedule draw, no failed op, nothing for the transactional
    write path to catch.  Only the background scrubber's CRC walk can
    find it.  The secondary is chosen because reads prefer the primary,
    so the rot stays latent until the scrub cycle that follows.
    """
    r = eng.router.shards[1].replica_set.replicas[1]
    r.flush()  # no dirty frame may later overwrite the rot
    bids = [
        b
        for b in sorted(r.checksummed.block_ids())
        if r.checksummed.crc_of(b) is not None
    ][:ROT_BLOCKS]
    for b in bids:
        r.base_store.scribble(b, [("bitrot", b)])
    return len(bids)


def _replay(base, trace, *, factor, chaos, kill=False):
    """Run the trace in fixed batches; returns (answers, final, stats)."""
    eng = _engine(base, factor, chaos)
    answers = []
    rejected = 0
    rotted = 0
    batches = [trace[i:i + BATCH] for i in range(0, len(trace), BATCH)]
    for bi, batch in enumerate(batches):
        if kill and bi == KILL_AT_BATCH:
            eng.kill_replica(0, 0, "chaos monkey: primary of shard 0")
        if kill and bi == KILL_AT_BATCH + 2:
            eng.heal()
        res = eng.execute(batch)
        answers.append(res.results)
        if chaos and bi == ROT_AT_BATCH:
            rotted += _inject_rot(eng)
        if chaos and bi % SCRUB_EVERY == SCRUB_EVERY - 1:
            eng.scrub()
    if chaos:
        eng.scrub()  # final pass: nothing rotten may outlive the run
    final = eng.execute([("q4", (0.0, EXTENT, 0.0, EXTENT))]).results[0]
    stats = eng.stats()
    eng.close()
    return answers, final, stats, rejected, rotted


def _oracle_final(trace, base):
    """Live set after the trace (acknowledged-write ground truth)."""
    live = set(base)
    for kind, arg in trace:
        if kind == "ins":
            live.add(arg)
        elif kind == "del":
            live.discard(arg)
    return sorted(live)


def _run():
    base = uniform_points(N_BASE, seed=901)
    trace = generate_trace(
        N_OPS, mix=(0.35, 0.25, 0.25), q4_weight=0.15, seed=FAULT_SEED,
        extent=EXTENT, initial=base,
    )

    # -- fault-free references ------------------------------------------
    o_answers, o_final, o_stats, _, _ = _replay(
        base, trace, factor=1, chaos=False
    )
    r_answers, r_final, r_stats, _, _ = _replay(
        base, trace, factor=FACTOR, chaos=False
    )
    assert r_answers == o_answers  # replication alone changes nothing
    ref_io = (
        r_stats["total_replica_reads"] + r_stats["total_replica_writes"]
    )

    # -- the chaos run (and its determinism double) ---------------------
    c_answers, c_final, c_stats, c_rej, c_rot = _replay(
        base, trace, factor=FACTOR, chaos=True, kill=True
    )
    d_answers, d_final, d_stats, _, _ = _replay(
        base, trace, factor=FACTOR, chaos=True, kill=True
    )

    wrong = sum(
        1
        for ba, bo in zip(c_answers, o_answers)
        for a, o in zip(ba, bo)
        if a != o
    )
    lost = len(set(_oracle_final(trace, base)) - set(c_final))
    chaos_io = (
        c_stats["total_replica_reads"] + c_stats["total_replica_writes"]
    )
    overhead = chaos_io / ref_io if ref_io else 0.0
    determinism_mismatch = int(
        c_answers != d_answers
        or c_final != d_final
        or c_stats["replication"] != d_stats["replication"]
        or c_stats["scrub"] != d_stats["scrub"]
    )
    repl = c_stats["replication"]
    scrub = c_stats["scrub"]

    rows = [
        ["fault-free r=1", "-", "-", "-", "-", "-",
         o_stats["total_reads"] + o_stats["total_writes"]],
        ["fault-free r=2", "-", "-", "-", "-", "-", ref_io],
        [
            f"chaos r=2 (seed {FAULT_SEED})",
            repl["failovers"],
            repl["rebuilds"],
            repl["read_fallbacks"],
            scrub["repairs"],
            f"{overhead:.2f}x",
            chaos_io,
        ],
    ]
    gate = {
        "wrong_answers": wrong,
        "lost_acked_writes": lost,
        "write_rejections": c_rej,
        "scrub_unrepaired": scrub["unrepaired"],
        "rot_injected": c_rot,
        "rot_missed_by_scrub": max(0, c_rot - scrub["repairs"]),
        "rebuild_failures": repl["rebuild_failures"],
        "dead_replicas_at_end": FACTOR * N_SHARDS - repl["live_replicas"],
        "determinism_mismatch": determinism_mismatch,
        "overhead_excess": round(max(0.0, overhead - OVERHEAD_BOUND), 3),
        "chaos_total_replica_io": chaos_io,
    }
    perf = {
        "overhead_ratio": round(overhead, 3),
        "failovers": repl["failovers"],
        "rebuilds": repl["rebuilds"],
        "read_fallbacks": repl["read_fallbacks"],
        "breaker_opened": repl["breaker_opened"],
        "crc_mismatches": repl["crc_mismatches"],
        "scrub_cycles": scrub["cycles"],
        "scrub_repairs": scrub["repairs"],
        "scrub_blocks_checked": scrub["blocks_checked"],
    }
    return rows, gate, perf


def test_s2_chaos(benchmark):
    rows, gate, perf = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "S2",
        title=(
            f"[S2] Chaos serving: {N_OPS}-op trace over a {N_BASE}-point "
            f"base at replication_factor={FACTOR} with live fault "
            f"injection, a primary kill and periodic scrub (B={B})"
        ),
        headers=[
            "configuration", "failovers", "rebuilds", "read fallbacks",
            "scrub repairs", "I/O overhead", "replica I/O",
        ],
        rows=rows,
        gate=gate,
        perf=perf,
        notes=(
            "Answers under chaos are asserted byte-identical to the "
            "fault-free oracle and no acknowledged write is lost; "
            f"{ROT_BLOCKS} blocks of at-rest bitrot are scribbled under "
            "a secondary replica mid-run and the "
            "scrubber must repair every rotten block it finds and the "
            "whole run (fault draws, repairs, failovers, exact I/O) is "
            "deterministic given the seed. Overhead compares all-replica "
            f"physical I/O against the fault-free factor-{FACTOR} run "
            f"and is gated at {OVERHEAD_BOUND}x."
        ),
    )
    assert gate["wrong_answers"] == 0, "chaos run returned wrong answers"
    assert gate["lost_acked_writes"] == 0, "acknowledged writes were lost"
    assert gate["scrub_unrepaired"] == 0, "scrubber left rot unrepaired"
    assert gate["rot_injected"] == ROT_BLOCKS, "at-rest rot injection failed"
    assert gate["rot_missed_by_scrub"] == 0, "scrub missed injected bitrot"
    assert gate["determinism_mismatch"] == 0, "chaos run not reproducible"
    assert gate["overhead_excess"] == 0.0, (
        f"failover overhead past {OVERHEAD_BOUND}x: {perf['overhead_ratio']}"
    )
