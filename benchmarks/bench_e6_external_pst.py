"""E6 -- Theorem 6: the external priority search tree's three bounds.

Regenerates three curves:
  space(N)      = O(N/B) blocks          (N sweep, fixed B)
  query(N, T)   = O(log_B N + T/B) I/Os  (T sweep at fixed N, N sweep at
                                          fixed tiny T)
  update(N)     = O(log_B N) I/Os        (insert + delete costs, N sweep)
"""

import random

from repro.analysis.bounds import correlation, fit_linear, log_b
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import uniform_points

from conftest import record_result

B = 32
N_SWEEP = (1024, 4096, 16384)


def _space_and_updates():
    rows = []
    gate = {}
    for n in N_SWEEP:
        pts = uniform_points(n, seed=66)
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store, pts)
        blocks = pst.blocks_in_use()

        fresh = [(x + 2e6, y) for x, y in uniform_points(60, seed=67)]
        with Meter(store) as m_ins:
            for p in fresh:
                pst.insert(*p)
        victims = random.Random(68).sample(pts, 60)
        with Meter(store) as m_del:
            for p in victims:
                pst.delete(*p)
        rows.append([
            n, blocks, f"{blocks / (n / B):.2f}",
            f"{m_ins.delta.ios / 60:.1f}", f"{m_del.delta.ios / 60:.1f}",
            f"{log_b(n, B):.2f}",
        ])
        gate[f"blocks_n{n}"] = blocks
        gate[f"insert_io_n{n}"] = round(m_ins.delta.ios / 60, 4)
        gate[f"delete_io_n{n}"] = round(m_del.delta.ios / 60, 4)
    return rows, gate


def _query_t_sweep():
    n = 16384
    pts = uniform_points(n, seed=69)
    store = BlockStore(B)
    pst = ExternalPrioritySearchTree(store, pts)
    ys = sorted(p[1] for p in pts)
    rows, ts, ios = [], [], []
    gate = {}
    for frac in (0.001, 0.01, 0.05, 0.2):
        c = ys[int(len(ys) * (1 - frac))]
        with Meter(store) as m:
            got = pst.query(-1e9, 1e9, c)
        bound = log_b(n, B) + len(got) / B
        rows.append([f"{frac:.1%}", len(got), m.delta.ios, f"{bound:.1f}",
                     f"{m.delta.ios / bound:.1f}"])
        ts.append(len(got) / B)
        ios.append(m.delta.ios)
        gate[f"query_io_sel{frac:g}"] = m.delta.ios
    slope, intercept = fit_linear(ts, ios)
    gate["marginal_io_per_block"] = round(slope, 4)
    return rows, correlation(ts, ios), slope, gate


def test_e6_space_and_update_scaling(benchmark):
    rows, gate = benchmark.pedantic(_space_and_updates, rounds=1, iterations=1)
    record_result(
        "E6a",
        title=f"[E6a] Theorem 6 space + updates (B = {B}): "
              f"linear space, logarithmic updates",
        headers=["N", "blocks", "blocks/(N/B)", "insert I/O", "delete I/O",
                 "log_B N"],
        rows=rows,
        gate=gate,
    )
    ratios = [float(r[2]) for r in rows]
    assert ratios[-1] <= ratios[0] * 1.5 + 0.5       # space stays linear
    ins = [float(r[3]) for r in rows]
    assert ins[-1] <= ins[0] * 3.0 + 10               # update grows ~log


def test_e6_query_output_sensitivity(benchmark):
    rows, corr, slope, gate = benchmark.pedantic(
        _query_t_sweep, rounds=1, iterations=1
    )
    record_result(
        "E6q",
        title=f"[E6b] Theorem 6 queries (N = 16384, B = {B}): "
              f"I/O vs t correlation = {corr:.3f}, "
              f"marginal cost {slope:.1f} I/Os per output block",
        headers=["selectivity", "T", "I/Os", "log_B N + T/B", "ratio"],
        rows=rows,
        gate=gate,
    )
    assert corr > 0.9


def test_e6_query_wall_time(benchmark):
    pts = uniform_points(8192, seed=70)
    pst = ExternalPrioritySearchTree(BlockStore(B), pts)
    ys = sorted(p[1] for p in pts)
    c = ys[int(len(ys) * 0.95)]
    benchmark(lambda: pst.query(2e5, 8e5, c))


def test_e6_insert_wall_time(benchmark):
    pts = uniform_points(4096, seed=71)
    store = BlockStore(B)
    pst = ExternalPrioritySearchTree(store, pts)
    counter = [0]

    def one_insert():
        counter[0] += 1
        pst.insert(2e6 + counter[0], counter[0] % 997)

    benchmark(one_insert)
