"""S1 -- serving engine: batched concurrent execution vs the serial loop.

The serving tier's claim is operational, not asymptotic: fanning a
batch across slab shards under per-shard reader/writer locks must beat
the one-op-at-a-time loop whenever there is real device time to
overlap, while returning bit-identical results.  This bench simulates
device time (``io_latency`` sleeps per physical transfer, which
releases the GIL) and measures, per shard count:

- batch-executor throughput vs the serial loop (ops/s, speedup),
- p50/p99 per-batch latency,
- shed rate under a deliberately overloaded admission controller.

Gated counters are the deterministic ones only: exact physical I/O per
configuration (routing and per-shard execution order are fixed, so
thread scheduling cannot change them), total answer records, and the
``speedup_deficit`` acceptance check ``max(0, 2 - speedup)`` at 4
workers -- 0 whenever the executor clears the required 2x, with real
headroom (it measures ~3x under simulated latency).  Wall-clock
numbers go to the non-gated ``perf`` section of the bench JSON.

A final *pooled* configuration reruns the 4-shard batch workload with
a per-shard scan-resistant 2Q buffer pool and CONT-chain readahead:
cache-served reads skip the simulated device sleep entirely, so both
physical I/O and wall-clock drop while the merged answers stay
bit-identical.  Its numbers ride in ``perf`` and the ``cache`` section
(not gated: the gated counters pin the *uncached* cost model the
paper's theorems speak to).
"""

import statistics
import threading

from repro.serve import EngineOverloaded, ServingEngine
from repro.workloads import uniform_points
from repro.workloads.traces import generate_trace

from conftest import record_result

B = 32
N_BASE = 4000
N_OPS = 600
BATCH = 150
EXTENT = 1_000_000.0  # one domain for base points AND trace ops: a
IO_LATENCY = 0.0005   # mismatch would funnel every op into one slab
SHARD_COUNTS = (1, 2, 4)
OVERLOAD_CLIENTS = 8
POOL_CAPACITY = 48      # per shard: below the working set, so the cache
                        # must earn its hits rather than hold everything
POOL_POLICY = "2q"
READAHEAD = 4


def _batches(trace):
    return [trace[i:i + BATCH] for i in range(0, len(trace), BATCH)]


def _engine(base, n_shards, **pool_kwargs):
    return ServingEngine(
        base, n_shards=n_shards, block_size=B, backend="log",
        io_latency=IO_LATENCY, max_workers=n_shards,
        max_inflight=max(1, n_shards), max_queue=8,
        **pool_kwargs,
    )


def _shed_rate(base, n_shards):
    """Overload: more concurrent clients than admission slots, shed policy."""
    eng = ServingEngine(
        base, n_shards=n_shards, block_size=B, backend="log",
        io_latency=IO_LATENCY, max_workers=n_shards,
        max_inflight=1, max_queue=0, admission_policy="shed",
    )
    trace = generate_trace(2 * BATCH, seed=302, extent=EXTENT, initial=base)
    outcomes = []

    def client():
        try:
            eng.execute(trace)
            outcomes.append("ok")
        except EngineOverloaded:
            outcomes.append("shed")

    threads = [threading.Thread(target=client) for _ in range(OVERLOAD_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = eng.admission.snapshot()
    eng.close()
    return outcomes.count("shed") / len(outcomes), snap


def _run():
    base = uniform_points(N_BASE, seed=301)
    trace = generate_trace(
        N_OPS, mix=(0.35, 0.25, 0.25), q4_weight=0.15, seed=302,
        extent=EXTENT, initial=base,
    )
    batches = _batches(trace)
    rows = []
    gate = {}
    perf = {}
    cache = {}
    speedup_at_4 = 0.0
    serial_wall_4 = batch_wall_4 = 0.0
    for n_shards in SHARD_COUNTS:
        serial = _engine(base, n_shards)
        sres = serial.execute_serial(trace)
        serial_wall = sres.wall_s
        serial.close()

        eng = _engine(base, n_shards)
        results = [eng.execute(batch) for batch in batches]
        batch_wall = sum(r.wall_s for r in results)
        latencies = sorted(r.wall_s for r in results)
        merged = [x for r in results for x in r.results]
        # identical answers regardless of shard count or concurrency
        assert merged == sres.results
        total_io = eng.stats()["total_reads"] + eng.stats()["total_writes"]
        eng.close()

        speedup = serial_wall / batch_wall if batch_wall else 0.0
        if n_shards == 4:
            speedup_at_4 = speedup
            serial_wall_4 = serial_wall
            batch_wall_4 = batch_wall
        p50 = statistics.median(latencies)
        p99 = latencies[min(len(latencies) - 1,
                            int(0.99 * (len(latencies) - 1)))]
        shed_rate, adm = _shed_rate(base, n_shards)
        rows.append([
            n_shards,
            f"{len(trace) / serial_wall:.0f}",
            f"{len(trace) / batch_wall:.0f}",
            f"{speedup:.2f}x",
            f"{p50 * 1e3:.1f}",
            f"{p99 * 1e3:.1f}",
            f"{shed_rate:.0%}",
            total_io,
        ])
        gate[f"total_io_{n_shards}sh"] = total_io
        perf[f"throughput_batched_ops_s_{n_shards}sh"] = round(
            len(trace) / batch_wall, 1
        )
        perf[f"throughput_serial_ops_s_{n_shards}sh"] = round(
            len(trace) / serial_wall, 1
        )
        perf[f"batch_p50_ms_{n_shards}sh"] = round(p50 * 1e3, 2)
        perf[f"batch_p99_ms_{n_shards}sh"] = round(p99 * 1e3, 2)
        perf[f"shed_rate_{n_shards}sh"] = round(shed_rate, 3)
        # deterministic admission accounting: nobody vanishes
        gate[f"admission_unaccounted_{n_shards}sh"] = (
            OVERLOAD_CLIENTS - adm["admitted"] - adm["shed"]
        )
    # answer volume is fixed by the trace, independent of sharding
    gate["answer_records"] = sum(
        len(r) for r in sres.results if isinstance(r, list)
    )
    # acceptance: >= 2x over the serial loop at 4 workers
    gate["speedup_deficit"] = round(max(0.0, 2.0 - speedup_at_4), 3)

    # -- pooled configuration: same 4-shard batch workload behind a
    # scan-resistant 2Q pool with readahead.  One executor task per
    # shard per batch, so the physical I/O stays deterministic.
    pooled = _engine(
        base, 4, pool_capacity=POOL_CAPACITY, pool_policy=POOL_POLICY,
        readahead_window=READAHEAD,
    )
    presults = [pooled.execute(batch) for batch in batches]
    pooled_wall = sum(r.wall_s for r in presults)
    pmerged = [x for r in presults for x in r.results]
    # the cache must be invisible in the answers
    assert pmerged == sres.results
    pstats = pooled.stats()
    pooled_io = pstats["total_reads"] + pstats["total_writes"]
    shard_stats = pstats["shards"]
    pool_hits = sum(s["pool_hits"] for s in shard_stats)
    pool_misses = sum(s["pool_misses"] for s in shard_stats)
    pooled.close()
    # cache-served reads never touch the simulated device: strictly
    # less physical I/O (deterministic) and less wall-clock
    assert pooled_io < gate["total_io_4sh"], (pooled_io, gate["total_io_4sh"])
    assert pooled_wall < batch_wall_4, (pooled_wall, batch_wall_4)
    pooled_speedup = serial_wall_4 / pooled_wall if pooled_wall else 0.0
    rows.append([
        f"4 + {POOL_POLICY} pool({POOL_CAPACITY})",
        "-",
        f"{len(trace) / pooled_wall:.0f}",
        f"{pooled_speedup:.2f}x",
        "-", "-", "-",
        pooled_io,
    ])
    perf["throughput_batched_pooled_ops_s_4sh"] = round(
        len(trace) / pooled_wall, 1
    )
    perf["pooled_speedup_over_serial_4sh"] = round(pooled_speedup, 2)
    perf["pooled_physical_io_4sh"] = pooled_io
    total_pool_reads = pool_hits + pool_misses
    hit_rate = pool_hits / total_pool_reads if total_pool_reads else 0.0
    cache[f"{POOL_POLICY}_pool_4sh"] = {
        "policy": POOL_POLICY,
        "hits": pool_hits,
        "misses": pool_misses,
        "hit_rate": round(hit_rate, 4),
        "prefetch_hits": sum(s["pool_prefetch_hits"] for s in shard_stats),
        "prefetch_waste": sum(s["pool_prefetch_waste"] for s in shard_stats),
    }
    return rows, gate, perf, cache


def test_s1_serving(benchmark):
    rows, gate, perf, cache = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "S1",
        title=(
            f"[S1] Serving engine: {N_OPS}-op mixed batches over a "
            f"{N_BASE}-point base (B={B}, simulated io_latency="
            f"{IO_LATENCY * 1e6:.0f}us)"
        ),
        headers=[
            "shards", "serial ops/s", "batched ops/s", "speedup",
            "p50 ms", "p99 ms", "shed rate", "total I/O",
        ],
        rows=rows,
        gate=gate,
        perf=perf,
        cache=cache,
        notes=(
            "Speedup is batched concurrent execution vs the "
            "one-op-at-a-time serial loop on identical shards; answers "
            "are asserted identical. I/O counts and admission "
            "accounting are deterministic and gated; wall-clock "
            "columns are exported under 'perf' and never gated. The "
            "pooled row (2q + readahead) is informational: identical "
            "answers, fewer physical transfers, faster wall-clock."
        ),
    )
    assert gate["speedup_deficit"] == 0.0, (
        f"batch executor speedup below 2x at 4 workers: {rows}"
    )
