"""F1 -- the paper's open problem: can r = 1 give A = O(1) for 3-sided?

Section 2.2.1: "we were unable to achieve A = O(1) for the case r = 1
... an interesting open problem."  This experiment measures the access
overhead of the natural redundancy-1 schemes (partitions) against the
Theorem 4 scheme (r ~ 2) as N grows, each evaluated on its own worst
query family among x-slabs of varying width at high y-thresholds.  The
partitions' overheads climb with N while the redundant scheme stays
flat -- evidence for (not proof of) the conjecture that redundancy is
necessary.
"""

from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.geometry import ThreeSidedQuery
from repro.indexability.partitions import (
    PARTITIONS,
    partition_access_overhead,
)
from repro.workloads import uniform_points

from conftest import record_result

B = 16
N_SWEEP = (512, 2048, 8192)


def _adversarial_3sided(points, n_queries=40):
    """x-slabs of many widths at y-thresholds giving ~B answers."""
    xs = sorted(p[0] for p in points)
    N = len(points)
    out = []
    width = max(2, N // 64)
    while width <= N:
        for off in range(0, max(1, N - width), max(1, (N - width) // 4 or 1)):
            a, b = xs[off], xs[min(N - 1, off + width)]
            strip = sorted(
                (p[1] for p in points if a <= p[0] <= b), reverse=True
            )
            if len(strip) >= B:
                out.append(ThreeSidedQuery(a, b, strip[B - 1]))
            if len(out) >= n_queries:
                return out
        width *= 4
    return out


def _run():
    rows = []
    gate = {}
    for n in N_SWEEP:
        pts = uniform_points(n, seed=181)
        queries = _adversarial_3sided(pts)
        row = [n]
        for name, build in PARTITIONS.items():
            scheme = build(pts, B)
            row.append(f"{partition_access_overhead(scheme, pts, queries):.1f}")
        # the Theorem 4 scheme on the same queries, its own covers
        idx = ThreeSidedSweepIndex(pts, B, alpha=2)
        worst = 0.0
        for q in queries:
            got, used = idx.query(q)
            t_blocks = max(1, -(-len(set(got)) // B))
            worst = max(worst, len(used) / t_blocks)
        row.append(f"{worst:.1f}")
        rows.append(row)
        gate[f"thm4_overhead_n{n}"] = round(worst, 4)
    return rows, gate


def test_f1_r1_open_problem(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["N"] + [f"{k} (r=1)" for k in PARTITIONS] + ["Thm 4 (r~2)"]
    record_result(
        "F1",
        title=f"[F1] Open problem probe: worst access overhead A of "
              f"redundancy-1 partitions vs the redundant Theorem 4 scheme "
              f"(B = {B}, adversarial 3-sided queries, ~B answers each)",
        headers=headers,
        rows=rows,
        gate=gate,
    )
    # the redundant scheme stays constant-ish; every partition grows
    thm4 = [float(r[-1]) for r in rows]
    assert max(thm4) <= 8.0
    for col in range(1, len(PARTITIONS) + 1):
        series = [float(r[col]) for r in rows]
        assert series[-1] > series[0], "partition overhead failed to grow"
