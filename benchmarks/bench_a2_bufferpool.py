"""A2 -- ablation: the buffer pool and the resident-catalog assumption.

Section 3.1 assumes O(1) catalog blocks live in main memory.  This
ablation quantifies that assumption: the same PST query workload runs
over the raw disk and over LRU pools of growing capacity, and with the
Lemma-1 catalog blocks pinned.  Physical reads per query drop as cache
approaches the structure's hot set.
"""

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.geometry import ThreeSidedQuery
from repro.io import BlockStore, BufferPool
from repro.workloads import three_sided_queries, uniform_points

from conftest import record_result

B = 32
N = 6000


def _run():
    pts = uniform_points(N, seed=131)
    qs = three_sided_queries(pts, 40, seed=132, target_frac=0.01)
    rows = []
    gate = {}
    for capacity in (0, 8, 64, 512):
        disk = BlockStore(B)
        storage = disk if capacity == 0 else BufferPool(disk, capacity)
        pst = ExternalPrioritySearchTree(storage, pts)
        if capacity > 0:
            storage.drop()   # cold cache: charge steady-state behaviour
        before = disk.stats.copy()
        for q in qs:
            pst.query(q.a, q.b, q.c)
        delta = disk.stats - before
        hit = storage.hit_rate if capacity > 0 else 0.0
        rows.append([
            capacity, f"{delta.reads / len(qs):.1f}", f"{hit:.0%}",
        ])
        gate[f"reads_per_query_cap{capacity}"] = round(
            delta.reads / len(qs), 4
        )
    return rows, gate


def _run_pinned_catalog():
    B_small = 16
    pts = uniform_points(B_small * B_small, seed=133)
    disk = BlockStore(B_small)
    pool = BufferPool(disk, capacity=2)
    s = SmallThreeSidedStructure(pool, pts)
    ys = sorted(p[1] for p in pts)
    q = ThreeSidedQuery(-1e9, 1e9, ys[int(len(ys) * 0.9)])

    pool.drop()
    before = disk.stats.copy()
    for _ in range(10):
        s.query(q)
    unpinned = (disk.stats - before).reads / 10

    for bid in s._catalog_bids + [s._pending_bid]:
        pool.pin(bid)
    before = disk.stats.copy()
    for _ in range(10):
        s.query(q)
    pinned = (disk.stats - before).reads / 10
    return unpinned, pinned


def test_a2_pool_capacity_sweep(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "A2",
        title=f"[A2] Buffer pool ablation on PST queries (N = {N}, B = {B})",
        headers=["pool capacity (blocks)", "physical reads/query",
                 "hit rate"],
        rows=rows,
        gate=gate,
    )
    reads = [float(r[1]) for r in rows]
    assert reads[-1] <= reads[0]   # cache can only help


def test_a2_pinned_catalog(benchmark):
    unpinned, pinned = benchmark.pedantic(
        _run_pinned_catalog, rounds=1, iterations=1
    )
    record_result(
        "A2b",
        title="[A2b] Lemma 1's 'O(1) catalog blocks in memory' assumption",
        headers=["catalog residency", "physical reads/query"],
        rows=[["on disk", f"{unpinned:.1f}"],
              ["pinned (paper's model)", f"{pinned:.1f}"]],
        gate={
            "unpinned_reads_per_query": round(unpinned, 4),
            "pinned_reads_per_query": round(pinned, 4),
        },
    )
    assert pinned < unpinned
