"""A1 -- ablation: the coalescing arity alpha of the Theorem 4 sweep.

alpha is the scheme's only knob: redundancy 1 + 1/(alpha-1) falls as
alpha grows while the access-overhead bound alpha^2 + alpha + 1 rises.
This ablation regenerates the measured tradeoff curve -- the design
choice DESIGN.md calls out for Section 2.2.1 -- plus its effect on the
Lemma 1 structure's query cost.
"""

import math

from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.geometry import ThreeSidedQuery
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import three_sided_queries, uniform_points

from conftest import record_result

B = 16
N = 4096


def _run():
    pts = uniform_points(N, seed=121)
    qs = three_sided_queries(pts, 50, seed=122, target_frac=0.02)
    rows = []
    gate = {}
    for alpha in (2, 3, 4, 6, 8, 12):
        idx = ThreeSidedSweepIndex(pts, B, alpha=alpha)
        worst_ao, total_blocks = 0.0, 0
        for q in qs:
            got, used = idx.query(q)
            T = len(set(got))
            denom = max(1, math.ceil(T / B))
            worst_ao = max(worst_ao, len(used) / denom)
            total_blocks += len(used)

        # the same alpha inside the dynamic Lemma-1 structure
        store = BlockStore(B)
        small = SmallThreeSidedStructure(
            store, uniform_points(B * B, seed=123), alpha=alpha
        )
        ys = sorted(p[1] for p in small.all_points())
        c = ys[int(len(ys) * 0.95)]
        with Meter(store) as m:
            small.query(ThreeSidedQuery(-1e9, 1e9, c))
        rows.append([
            alpha, f"{idx.redundancy:.3f}", f"{1 + 1 / (alpha - 1):.3f}",
            f"{worst_ao:.1f}", alpha * alpha + alpha + 1,
            f"{total_blocks / len(qs):.1f}", m.delta.ios,
        ])
        gate[f"redundancy_a{alpha}"] = round(idx.redundancy, 4)
        gate[f"access_a{alpha}"] = round(worst_ao, 4)
        gate[f"lemma1_query_io_a{alpha}"] = m.delta.ios
    return rows, gate


def test_a1_alpha_tradeoff(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "A1",
        title=f"[A1] Alpha ablation (N = {N}, B = {B}): space falls, "
              f"access rises -- choose alpha = 2-4",
        headers=["alpha", "r", "r bound", "worst A", "A bound",
                 "mean blocks/query", "Lemma1 q I/O"],
        rows=rows,
        gate=gate,
    )
    rs = [float(r[1]) for r in rows]
    assert rs == sorted(rs, reverse=True)       # redundancy monotone down
