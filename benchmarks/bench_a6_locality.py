"""A6 -- ablation: access locality beyond the unit-cost I/O model.

The paper's model charges every block transfer one unit; real devices
reward sequential runs.  Using the trace recorder, this ablation replays
the same query batch on the optimal structures and the scan-style
baselines and reports, alongside the I/O count, the *sequential
fraction* of reads and mean run length -- quantifying what the unit-cost
model abstracts away (the B-tree's scans are long sequential runs; the
PST's descents are scattered).
"""

from repro.baselines import BTreeXFilter, RTree
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.io import BlockStore
from repro.io.trace import TraceRecorder
from repro.workloads import three_sided_queries, uniform_points

from conftest import record_result

B = 32
N = 6000


def _run():
    pts = uniform_points(N, seed=171)
    qs = three_sided_queries(pts, 25, seed=172, target_frac=0.02)
    rows = []
    builders = [
        ("PST (Thm 6)", lambda st: ExternalPrioritySearchTree(st, pts),
         lambda idx, q: idx.query(q.a, q.b, q.c)),
        ("B-tree+filter", lambda st: BTreeXFilter(st, pts),
         lambda idx, q: idx.query_3sided(q.a, q.b, q.c)),
        ("R-tree", lambda st: RTree(st, pts),
         lambda idx, q: idx.query_3sided(q.a, q.b, q.c)),
    ]
    slugs = {"PST (Thm 6)": "pst", "B-tree+filter": "btree_filter",
             "R-tree": "rtree"}
    answers = None
    gate = {}
    for name, build, ask in builders:
        rec = TraceRecorder(BlockStore(B))
        idx = build(rec)
        rec.clear()
        got_all = []
        for q in qs:
            got_all.append(sorted(set(ask(idx, q))))
        if answers is None:
            answers = got_all
        else:
            assert got_all == answers, f"{name} disagrees"
        s = rec.summary()
        runs = rec.read_run_lengths()
        rows.append([
            name, s.reads, f"{s.sequential_fraction:.0%}",
            f"{sum(runs) / len(runs):.1f}" if runs else "-",
            f"{s.reread_fraction:.0%}",
        ])
        gate[f"reads_{slugs[name]}"] = s.reads
    return rows, gate


def test_a6_access_locality(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "A6",
        title=f"[A6] Access locality over the query batch "
              f"(N = {N}, B = {B}; identical answers)",
        headers=["structure", "reads", "sequential", "mean run len",
                 "re-reads"],
        rows=rows,
        gate=gate,
    )
    by_name = {r[0]: r for r in rows}
    # the scan baseline must show markedly more sequential behaviour
    pst_seq = float(by_name["PST (Thm 6)"][2][:-1])
    bt_seq = float(by_name["B-tree+filter"][2][:-1])
    assert bt_seq > pst_seq
