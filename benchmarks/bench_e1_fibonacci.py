"""E1 -- Proposition 1: uniformity of the Fibonacci lattice.

Regenerates: for rectangles of fixed area ``l*B*N/B`` and wildly varying
aspect ratio placed across the lattice, the contained point count stays
within the ``[~l/c1, ~l/c2]`` envelope (c1 ~ 1.9, c2 ~ 0.45).  This
uniformity is what makes the Fibonacci workload worst-case for range
indexing and underpins the Theorem 2 lower bound.
"""

import math
import random

from repro.geometry import Rect
from repro.indexability import fibonacci_lattice, rectangle_point_count
from repro.indexability.fibonacci import C1, C2

from conftest import record_result

K_FIB = 21          # N = f_21 = 10946
ELL = 6.0           # rectangle area = ELL * N
PLACEMENTS = 12


def _measure(points):
    N = len(points)
    area = ELL * N
    rng = random.Random(1)
    rows = []
    violations = 0
    w = max(2.0, area / N)
    while w <= N:
        h = area / w
        if h > N:
            w *= 4
            continue
        counts = []
        for _ in range(PLACEMENTS):
            ox = rng.uniform(0, N - w)
            oy = rng.uniform(0, N - h)
            counts.append(
                rectangle_point_count(points, Rect(ox, ox + w, oy, oy + h))
            )
        lo_bound = math.floor(ELL / C1)
        hi_bound = math.ceil(ELL / C2)
        violations += sum(
            1 for c in counts if not lo_bound - 1 <= c <= hi_bound + 1
        )
        rows.append([
            f"{w:.0f} x {h:.0f}", f"{w / h:.3g}",
            min(counts), f"{sum(counts) / len(counts):.1f}", max(counts),
            f"{lo_bound}..{hi_bound}",
        ])
        w *= 4
    return rows, violations


def test_e1_proposition1_envelope(benchmark):
    points = fibonacci_lattice(K_FIB)
    rows, violations = benchmark.pedantic(
        _measure, args=(points,), rounds=1, iterations=1
    )
    record_result(
        "E1",
        title=f"[E1] Proposition 1 on F_{{{K_FIB}}} "
              f"(N = {len(points)}, area = {ELL:.0f}N, "
              f"{PLACEMENTS} placements/aspect; violations: {violations})",
        headers=["rectangle", "aspect", "min", "mean", "max", "Prop.1 range"],
        rows=rows,
        gate={"violations": violations},
    )
    # the envelope is asymptotic; allow boundary slack but no systematic breach
    assert violations <= len(rows) * PLACEMENTS * 0.1
