"""E5 -- Lemma 1: the Theta(B^2)-point dynamic structure.

Regenerates, for B in {16, 32, 64} with B^2 points each:
  space (blocks)          =  O(B)
  construction I/Os       =  O(B)
  query I/Os              =  O(1 + T/B)  (measured per output size)
  update I/Os (amortized) =  O(1)
"""

from repro.core.small_structure import SmallThreeSidedStructure
from repro.geometry import ThreeSidedQuery
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import uniform_points

from conftest import record_result


def _run():
    rows = []
    gate = {}
    for B in (16, 32, 64):
        pts = uniform_points(B * B, seed=55)
        store = BlockStore(B)
        with Meter(store) as m_build:
            s = SmallThreeSidedStructure(store, pts, max_points=B * B + B)
        blocks = s.num_blocks()

        # queries at three output scales
        ys = sorted(p[1] for p in pts)
        q_costs = []
        for frac in (0.01, 0.25):
            c = ys[int(len(ys) * (1 - frac))]
            with Meter(store) as m:
                got = s.query(ThreeSidedQuery(-1e9, 1e9, c))
            q_costs.append((len(got), m.delta.ios))

        # amortized updates: B inserts + B deletes
        fresh = uniform_points(B, seed=56, extent=10.0)
        fresh = [(x + 2e6, y) for x, y in fresh]
        with Meter(store) as m_upd:
            for p in fresh:
                s.insert(p)
            for p in fresh:
                s.delete(p)
        per_update = m_upd.delta.ios / (2 * B)
        rows.append([
            B, B * B, blocks, f"{blocks / B:.1f}B",
            m_build.delta.ios, f"{m_build.delta.ios / B:.1f}B",
            f"{q_costs[0][1]} ({q_costs[0][0]}pt)",
            f"{q_costs[1][1]} ({q_costs[1][0]}pt)",
            f"{per_update:.1f}",
        ])
        gate[f"blocks_B{B}"] = blocks
        gate[f"build_io_B{B}"] = m_build.delta.ios
        gate[f"small_query_io_B{B}"] = q_costs[0][1]
        gate[f"big_query_io_B{B}"] = q_costs[1][1]
        gate[f"update_io_B{B}"] = round(per_update, 4)
    return rows, gate


def test_e5_lemma1_bounds(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E5",
        title="[E5] Lemma 1: O(B) blocks, O(B) build, O(1+T/B) query, "
              "O(1) amortized update",
        headers=["B", "N=B^2", "blocks", "blocks/B", "build I/O", "build/B",
                 "small-q I/O", "big-q I/O", "I/O per update"],
        rows=rows,
        gate=gate,
    )
    # the space and build coefficients must stay bounded as B grows
    coeffs = [float(r[3][:-1]) for r in rows]
    assert max(coeffs) <= 3.5
    builds = [float(r[5][:-1]) for r in rows]
    assert max(builds) <= 3.5


def test_e5_query_wall_time(benchmark):
    B = 32
    pts = uniform_points(B * B, seed=57)
    s = SmallThreeSidedStructure(BlockStore(B), pts)
    ys = sorted(p[1] for p in pts)
    c = ys[int(len(ys) * 0.9)]
    benchmark(lambda: s.query(ThreeSidedQuery(0, 1e6, c)))
